//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest):
//! the `proptest! { fn t(x in strategy) { .. } }` macro, range/tuple/
//! collection strategies, `prop_map`/`prop_flat_map`, and `prop_assert*`.
//!
//! Differences from real proptest, by design of the stub:
//!
//! * inputs are sampled uniformly at random from a ChaCha12 stream seeded
//!   deterministically per test name — runs are reproducible, but there is
//!   **no shrinking**: on failure the harness prints the failing case index
//!   to stderr and re-raises the panic; the inputs themselves are recovered
//!   by re-running (sampling is deterministic, and `PROPTEST_SEED` perturbs
//!   it for exploration);
//! * `prop_assert!` maps to `assert!` (panics instead of returning `Err`);
//! * strategies are sampled, never enumerated, so `ProptestConfig::cases`
//!   is the exact number of cases run.
//!
//! See `vendor/README.md` for the swap-back procedure.

#![forbid(unsafe_code)]

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng as _;
use rand_chacha::rand_core::SeedableRng as _;

pub mod collection;

/// The RNG driving all sampling.
pub type TestRng = rand_chacha::ChaCha12Rng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Run exactly `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Build the deterministic per-test RNG. Seeded from the test's name (and
/// the optional `PROPTEST_SEED` environment variable for ad-hoc exploration).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut hasher = DefaultHasher::new();
    test_name.hash(&mut hasher);
    if let Ok(extra) = std::env::var("PROPTEST_SEED") {
        extra.hash(&mut hasher);
    }
    TestRng::seed_from_u64(hasher.finish())
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl<T: Clone> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Clone> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A fixed value used as a strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Inclusive bounds on generated collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed size.
    pub lo: usize,
    /// Largest allowed size.
    pub hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

fn sample_size(range: SizeRange, rng: &mut TestRng) -> usize {
    rng.gen_range(range.lo..=range.hi)
}

/// Strategy for `Vec<S::Value>` (returned by [`collection::vec`]).
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = sample_size(self.size, rng);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` (returned by [`collection::btree_set`]).
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = sample_size(self.size, rng);
        let mut set = BTreeSet::new();
        // Distinctness may be impossible if the element domain is smaller
        // than n; cap the attempts so sampling always terminates.
        let mut attempts = 0usize;
        while set.len() < n && attempts < 20 * n + 100 {
            set.insert(self.elem.sample(rng));
            attempts += 1;
        }
        set
    }
}

pub(crate) fn vec_strategy<S: Strategy>(elem: S, size: SizeRange) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

pub(crate) fn btree_set_strategy<S: Strategy>(elem: S, size: SizeRange) -> BTreeSetStrategy<S> {
    BTreeSetStrategy { elem, size }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property (stub: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property (stub: panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a property (stub: panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a test running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $( let $pat = $crate::Strategy::sample(&($strategy), &mut rng); )*
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "[proptest stub] property `{}` failed on case {}/{} \
                         (deterministic per-test seed: re-running reproduces \
                         the same inputs)",
                        stringify!($name),
                        case + 1,
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(16))]
        #[test]
        fn samples_stay_in_range(x in 5u32..10, scale in crate::any::<bool>()) {
            crate::prop_assert!((5..10).contains(&x));
            let doubled = if scale { x * 2 } else { x };
            crate::prop_assert!(doubled >= x);
        }

        #[test]
        #[should_panic]
        fn failing_property_reports_case_and_panics(x in 0u32..10) {
            crate::prop_assert!(x > 100, "x={x} can never exceed 100");
        }
    }
}
