//! Slice sampling and shuffling (the subset of `rand::seq` the workspace
//! uses: `shuffle`, `partial_shuffle`, `choose`).

use crate::RngCore;

fn index_below<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    debug_assert!(bound > 0);
    (rng.next_u64() % bound as u64) as usize
}

/// Extension trait on slices for random sampling and shuffling.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Return one uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle of the whole slice, in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Shuffle only `amount` elements into the front of the slice; returns
    /// `(shuffled_prefix, rest)`. The prefix is a uniform sample of distinct
    /// elements in uniform order.
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[index_below(rng, self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, index_below(rng, i + 1));
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = i + index_below(rng, self.len() - i);
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}
