//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.8 API surface), covering exactly what the `blockshard` workspace uses:
//! `Rng::{gen, gen_range, gen_bool}`, `seq::SliceRandom`, and the re-exported
//! `rand_core` traits. See `vendor/README.md`.

#![forbid(unsafe_code)]

pub use rand_core::{RngCore, SeedableRng};

pub mod seq;

/// Types that can be sampled uniformly from an `RngCore`'s raw bit stream
/// (the stub's analogue of `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types `gen_range` accepts (the stub's analogue of `SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] exactly as upstream `rand` does.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from the given range. Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
