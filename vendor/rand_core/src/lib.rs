//! Offline stand-in for the [`rand_core`](https://crates.io/crates/rand_core)
//! crate (0.6 API surface), covering exactly what the `blockshard` workspace
//! uses. See `vendor/README.md` for why these stubs exist and how to swap the
//! real crates back in.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of uniformly distributed
/// raw bits.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a new instance from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a new instance, expanding a `u64` into a full seed with
    /// SplitMix64 (the same scheme upstream `rand_core` uses, so seeds keep
    /// their "every bit matters" property).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
