//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate: a genuine ChaCha12 keystream generator behind the `ChaCha12Rng`
//! name, so the workspace keeps real ChaCha determinism and statistical
//! quality. The byte stream is *not* guaranteed to match upstream
//! `rand_chacha` word-for-word (block-counter layout differs); within this
//! workspace every simulation is a pure function of `(config, seed)` either
//! way. See `vendor/README.md`.

#![forbid(unsafe_code)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic RNG driven by the ChaCha stream cipher with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key + counter state words 4..16 of the ChaCha block.
    key: [u32; 8],
    /// 64-bit block counter (words 12/13); words 14/15 (nonce) stay zero.
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next word of `block` to emit; 16 means "exhausted".
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut init = [0u32; 16];
        init[..4].copy_from_slice(&CHACHA_CONSTANTS);
        init[4..12].copy_from_slice(&self.key);
        init[12] = self.counter as u32;
        init[13] = (self.counter >> 32) as u32;
        // init[14] and init[15] (the nonce) stay zero.
        let mut working = init;
        for _ in 0..6 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, i)) in self.block.iter_mut().zip(working.iter().zip(init.iter())) {
            *out = w.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be uncorrelated, {same}/16 equal");
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity check: bit population over 4096 words near 50%.
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let ones: u32 = (0..4096).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (4096.0 * 32.0);
        assert!((0.49..0.51).contains(&frac), "bit fraction {frac}");
    }
}
