//! The `blockshard` CLI: run, plan, check, and list declarative
//! `.scenario` sweep files. All logic lives in [`scenario::cli`]; this
//! binary only forwards the arguments.
//!
//! ```sh
//! cargo run --release --bin blockshard -- run scenarios/fig2_quick.scenario
//! cargo run --release --bin blockshard -- plan scenarios/ablation_window.scenario
//! cargo run --release --bin blockshard -- list
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(scenario::cli::run(&args));
}
