//! # blockshard
//!
//! A complete Rust implementation of *“Stable Blockchain Sharding under
//! Adversarial Transaction Generation”* (Adhikari, Busch, Kowalski —
//! SPAA 2024): adversarial `(ρ, b)` transaction generation, the BDS and FDS
//! stable schedulers, a synchronous sharded-blockchain simulator, a
//! hierarchical shard-clustering layer, and the experiment harness that
//! regenerates the paper's figures.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names, and ships the `blockshard` CLI binary that drives
//! declarative `.scenario` sweep files through the [`scenario`] engine
//! (`cargo run --bin blockshard -- run scenarios/fig2_quick.scenario`).
//! See [README.md] for the project overview and quickstart,
//! [DESIGN.md] for the architecture (crate graph, BDS epoch pipeline, FDS
//! hierarchy and heights ordering), and [EXPERIMENTS.md] for
//! paper-vs-measured results — all three live at the repo root and are
//! also embedded under [`doc`] so the links work in generated rustdoc.
//!
//! [README.md]: crate::doc::readme
//! [DESIGN.md]: crate::doc::design
//! [EXPERIMENTS.md]: crate::doc::experiments
//!
//! ## Quickstart
//!
//! ```
//! use blockshard::prelude::*;
//!
//! // The paper's Section 7 setup: 64 shards, one account each, k = 8.
//! let cfg = SystemConfig::paper_simulation();
//! let map = AccountMap::random(&cfg, 1);
//! let workload = AdversaryConfig {
//!     rho: 0.10,
//!     burstiness: 50,
//!     strategy: StrategyKind::UniformRandom,
//!     seed: 7,
//!     ..Default::default()
//! };
//! let report = run_bds(&cfg, &map, &workload, Round(2_000));
//! assert!(report.committed > 0);
//! ```

/// Rendered copies of the repo-root documentation files, so the crate-level
/// links above resolve inside `cargo doc` output as well as on a forge.
pub mod doc {
    /// Project overview and quickstart (repo-root `README.md`).
    #[doc = include_str!("../README.md")]
    pub mod readme {}

    /// Architecture: crate graph, BDS epoch pipeline, FDS hierarchy and
    /// heights ordering (repo-root `DESIGN.md`).
    #[doc = include_str!("../DESIGN.md")]
    pub mod design {}

    /// Paper-vs-measured results skeleton (repo-root `EXPERIMENTS.md`).
    #[doc = include_str!("../EXPERIMENTS.md")]
    pub mod experiments {}
}

pub use adversary;
pub use cluster;
pub use conflict;
pub use runtime;
pub use scenario;
pub use schedulers;
pub use sharding_core as core_types;
pub use simnet;

/// Convenience re-exports covering the common experiment workflow.
pub mod prelude {
    pub use adversary::{AdversaryConfig, StrategyKind, WorkloadShape};
    pub use cluster::{LineMetric, MetricKind, ShardMetric, UniformMetric};
    pub use scenario::{run_jobs, JobOutcome, JobSpec, Scenario};
    pub use schedulers::{
        run_bds, run_bds_with_metric, run_fds, BdsConfig, FdsConfig, RunReport, SchedulerKind,
    };
    pub use sharding_core::stats::{StabilityDetector, StabilityVerdict};
    pub use sharding_core::{bounds, AccountMap, Round, ShardId, SystemConfig, Transaction, TxnId};
}
