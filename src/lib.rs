//! # blockshard
//!
//! A complete Rust implementation of *“Stable Blockchain Sharding under
//! Adversarial Transaction Generation”* (Adhikari, Busch, Kowalski —
//! SPAA 2024): adversarial `(ρ, b)` transaction generation, the BDS and FDS
//! stable schedulers, a synchronous sharded-blockchain simulator, a
//! hierarchical shard-clustering layer, and the experiment harness that
//! regenerates the paper's figures.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names. See `DESIGN.md` for the architecture and `EXPERIMENTS.md`
//! for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use blockshard::prelude::*;
//!
//! // The paper's Section 7 setup: 64 shards, one account each, k = 8.
//! let cfg = SystemConfig::paper_simulation();
//! let map = AccountMap::random(&cfg, 1);
//! let workload = AdversaryConfig {
//!     rho: 0.10,
//!     burstiness: 50,
//!     strategy: StrategyKind::UniformRandom,
//!     seed: 7,
//!     ..Default::default()
//! };
//! let report = run_bds(&cfg, &map, &workload, Round(2_000));
//! assert!(report.committed > 0);
//! ```

pub use adversary;
pub use cluster;
pub use conflict;
pub use runtime;
pub use schedulers;
pub use sharding_core as core_types;
pub use simnet;

/// Convenience re-exports covering the common experiment workflow.
pub mod prelude {
    pub use adversary::{AdversaryConfig, StrategyKind};
    pub use cluster::{LineMetric, ShardMetric, UniformMetric};
    pub use schedulers::{
        run_bds, run_bds_with_metric, run_fds, BdsConfig, FdsConfig, RunReport, SchedulerKind,
    };
    pub use sharding_core::{
        bounds, AccountMap, Round, ShardId, SystemConfig, Transaction, TxnId,
    };
    pub use sharding_core::stats::{StabilityDetector, StabilityVerdict};
}
