//! The non-uniform model: shards on a line, hierarchical clustering, and
//! the locality behaviour of the fully distributed scheduler.
//!
//! Prints the cluster hierarchy the FDS builds for a 64-shard line (the
//! paper's Figure 3 topology), then runs FDS and shows how transaction
//! latency scales with access distance `d`: transactions that only touch
//! nearby shards are handled by low-layer clusters with short epochs,
//! distant ones climb the hierarchy.
//!
//! ```sh
//! cargo run --release --example nonuniform_line
//! ```

use blockshard::cluster::Hierarchy;
use blockshard::core_types::{Transaction, TxnId};
use blockshard::prelude::*;
use blockshard::schedulers::fds::{FdsConfig, FdsSim};

fn main() {
    let sys = SystemConfig::paper_simulation();
    let map = AccountMap::round_robin(&sys); // account i on shard i
    let metric = LineMetric::new(sys.shards);

    // Show the hierarchy: layers of geometrically growing clusters.
    let h = Hierarchy::build(&metric);
    println!(
        "Hierarchy over a {}-shard line (diameter {}):",
        sys.shards, 63
    );
    for l in 0..h.num_layers() as u32 {
        let clusters = h.clusters(l, 0);
        println!(
            "  layer {l}: {:>2} clusters, max diameter {:>2}, e.g. leader of first: {}",
            clusters.len(),
            h.layer_diameter(l),
            clusters[0].leader
        );
    }

    // Inject transactions of controlled access distance and measure
    // commit latency per distance class.
    println!("\nLatency vs access distance d (FDS, line metric):");
    println!(
        "{:>4} {:>8} {:>12} {:>14}",
        "d", "layer", "commits", "avg latency"
    );
    for d in [1u64, 2, 4, 8, 16, 32, 63] {
        let mut sim = FdsSim::new(&sys, &map, FdsConfig::default(), &metric);
        // Each of 20 transactions starts at shard 0 and writes the account
        // at distance d.
        let layer = sim.hierarchy().home_cluster(ShardId(0), d).layer;
        let mut injected = 0u64;
        for i in 0..20u64 {
            let t = Transaction::writing_shards(
                TxnId(i),
                ShardId(0),
                Round(i * 10),
                &map,
                &[ShardId(d as u32)],
            )
            .unwrap();
            // Feed one transaction every 10 rounds.
            while sim.now().raw() < i * 10 {
                sim.step(Vec::new());
            }
            sim.step(vec![t]);
            injected += 1;
        }
        for _ in 0..4_000 {
            sim.step(Vec::new());
        }
        let r = sim.finish();
        println!(
            "{:>4} {:>8} {:>9}/{:<2} {:>14.1}",
            d, layer, r.committed, injected, r.avg_latency
        );
    }

    println!(
        "\nLow-distance transactions resolve in low layers (short epochs, \
         near leaders); the worst distance d drives the Theorem 3 latency \
         bound 2·c1·b·d·log^2(s)·min(k, ceil(sqrt(s)))."
    );
}
