//! A realistic payments workload over the sharded ledger: conditional
//! cross-shard transfers in the style of the paper's Example 1, including
//! transfers that must *abort* because their condition fails.
//!
//! Demonstrates the full condition/action subtransaction semantics: a
//! transfer "move X from a to b if a holds at least X" splits into a
//! debit subtransaction at a's shard and a credit subtransaction at b's
//! shard, commits atomically when every destination votes yes, and aborts
//! atomically otherwise. Conservation of total balance is checked at the
//! end.
//!
//! ```sh
//! cargo run --release --example payments
//! ```

use blockshard::core_types::{AccountId, Transaction, TxnId};
use blockshard::prelude::*;
use blockshard::schedulers::bds::{BdsConfig, BdsSim};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;

fn main() {
    let sys = SystemConfig {
        shards: 16,
        accounts: 64,
        k_max: 4,
        ..SystemConfig::paper_simulation()
    };
    let map = AccountMap::random(&sys, 3);
    let initial = 1_000u64;
    let bcfg = BdsConfig {
        initial_balance: initial,
        ..BdsConfig::default()
    };
    let mut sim = BdsSim::new(&sys, &map, bcfg);
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(99);

    // Issue 500 random transfers over 2000 rounds; roughly a third ask
    // for more money than the payer can ever hold, so they must abort.
    let mut next_id = 0u64;
    let total_txns = 500u64;
    for r in 0..2_000u64 {
        let mut batch = Vec::new();
        if r % 4 == 0 && next_id < total_txns {
            let from = AccountId(rng.gen_range(0..sys.accounts as u64));
            let mut to = AccountId(rng.gen_range(0..sys.accounts as u64));
            while to == from {
                to = AccountId(rng.gen_range(0..sys.accounts as u64));
            }
            let amount = if rng.gen_bool(0.3) {
                // Poison transfer: asks for more than the global supply a
                // single account could ever hold in this run.
                1_000_000
            } else {
                rng.gen_range(1..=50)
            };
            let home = ShardId(rng.gen_range(0..sys.shards as u32));
            let t = Transaction::transfer(TxnId(next_id), home, Round(r), &map, from, to, amount)
                .unwrap();
            next_id += 1;
            batch.push(t);
        }
        sim.step(batch);
    }
    // Drain.
    for _ in 0..2_000 {
        sim.step(Vec::new());
    }

    let total: u64 = sim.ledgers().iter().map(|l| l.total()).sum();
    let expected = sys.accounts as u64 * initial;
    for c in sim.chains() {
        assert!(c.verify(), "chain of {} must verify", c.shard());
    }
    let r = sim.finish();
    println!(
        "Payments over {} shards, {} accounts:",
        sys.shards, sys.accounts
    );
    println!("  issued     : {}", next_id);
    println!("  committed  : {}", r.committed);
    println!("  aborted    : {} (insufficient funds)", r.aborted);
    println!("  avg latency: {:.1} rounds", r.avg_latency);
    println!("  total money: {total} (initial {expected})");
    assert_eq!(
        total, expected,
        "atomic cross-shard transfers conserve balance"
    );
    assert!(r.aborted > 0, "poison transfers must abort");
    println!("\nConservation holds: every transfer either fully committed or fully aborted.");
}
