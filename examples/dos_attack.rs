//! Denial-of-service resilience: the motivation scenario from the paper's
//! introduction. A malicious source floods the system with transaction
//! bursts trying to starve everyone else; a stable scheduler keeps queues
//! bounded as long as the total rate stays within its admissible bound.
//!
//! This example compares BDS under three attack shapes at the same
//! `(ρ, b)` envelope — recurring burst trains, a hot-shard attack, and
//! the pairwise-conflict pattern from the Theorem 1 lower bound — and
//! shows queue sizes and latency per attack.
//!
//! ```sh
//! cargo run --release --example dos_attack
//! ```

use blockshard::prelude::*;

fn main() {
    let sys = SystemConfig::paper_simulation();
    let map = AccountMap::random(&sys, 7);
    let rounds = Round(8_000);
    let rho = 0.05;
    let b = 300;

    println!(
        "DoS resilience of BDS: s=64, k=8, rho={rho}, b={b}, {} rounds\n",
        rounds.raw()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "attack", "committed", "pending", "avg queue", "avg latency", "verdict"
    );

    let attacks: Vec<(&str, StrategyKind)> = vec![
        ("steady (control)", StrategyKind::UniformRandom),
        (
            "burst train (p=500)",
            StrategyKind::BurstTrain { period: 500 },
        ),
        ("hot shard", StrategyKind::HotShard),
        ("pairwise conflicts", StrategyKind::PairwiseConflict),
    ];

    for (name, strategy) in attacks {
        let adv = AdversaryConfig {
            rho,
            burstiness: b,
            strategy,
            seed: 11,
            ..Default::default()
        };
        let r = run_bds(&sys, &map, &adv, rounds);
        println!(
            "{:<22} {:>10} {:>10} {:>12.2} {:>12.1} {:>10}",
            name,
            r.committed,
            r.pending_at_end,
            r.avg_queue_per_shard,
            r.avg_latency,
            format!("{:?}", r.verdict)
        );
    }

    println!(
        "\nEvery attack respects the same (rho, b) admission envelope, so the \
         scheduler's stability guarantee applies: queues stay bounded \
         (Theorem 2 bound here: {} pending transactions).",
        bounds::bds_queue_bound(b, sys.shards)
    );
}
