//! Quickstart: run both schedulers on the paper's Section 7 configuration
//! and print their reports side by side.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blockshard::prelude::*;

fn main() {
    // The paper's simulation setup: 64 shards, 64 accounts (one per
    // shard), transactions touching up to k = 8 shards.
    let sys = SystemConfig::paper_simulation();
    let map = AccountMap::random(&sys, 1);

    // A (ρ, b)-constrained adversary: steady rate 0.10 with a burst of
    // 200 transactions-worth of congestion at round 500.
    let adv = AdversaryConfig {
        rho: 0.10,
        burstiness: 200,
        strategy: StrategyKind::SingleBurst { burst_round: 500 },
        seed: 42,
        ..Default::default()
    };
    let rounds = Round(5_000);

    println!(
        "System: s={} accounts={} k={}",
        sys.shards, sys.accounts, sys.k_max
    );
    println!(
        "Adversary: rho={} b={} ({} rounds)\n",
        adv.rho,
        adv.burstiness,
        rounds.raw()
    );

    // Theorem thresholds for these parameters.
    println!(
        "Theorem 1 absolute stability threshold: rho <= {:.4}",
        bounds::theorem1_threshold(sys.k_max, sys.shards)
    );
    println!(
        "Theorem 2 BDS admissible rate:          rho <= {:.4}",
        bounds::bds_rate_bound(sys.k_max, sys.shards)
    );
    println!(
        "Theorem 2 queue bound: {} txns; latency bound: {} rounds (b={})\n",
        bounds::bds_queue_bound(adv.burstiness, sys.shards),
        bounds::bds_latency_bound(adv.burstiness, sys.k_max, sys.shards),
        adv.burstiness
    );

    // Algorithm 1 on the uniform model.
    let bds = run_bds(&sys, &map, &adv, rounds);
    println!("{}", bds.summary());

    // Algorithm 2 on the line topology (the paper's Figure 3 setting).
    let fds = schedulers::fds::run_fds_line(&sys, &map, &adv, rounds);
    println!("{}", fds.summary());

    println!(
        "\nBDS resolved {:.1}% of transactions, FDS {:.1}% — FDS pays a \
         distance penalty on the line, as in the paper's Figures 2-3.",
        100.0 * bds.resolution_rate(),
        100.0 * fds.resolution_rate()
    );
}
